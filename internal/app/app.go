// Package app defines the deterministic state-machine abstraction that
// execution replicas host (Definition A.14 in the paper: different
// instances processing the same totally ordered writes reach identical
// states) and provides the key-value store used as the evaluation
// workload.
package app

// Application is a deterministic state machine. Implementations must
// not introduce any nondeterminism (time, randomness, map iteration
// order) into Execute results or Snapshot encodings: execution
// replicas compare replies and checkpoint hashes across the group.
//
// Applications are driven by a single goroutine (the execution
// replica's main loop); implementations do not need internal locking
// unless they are shared, which the protocol never does.
type Application interface {
	// Execute applies one operation and returns its reply. Operations
	// arrive in the agreed total order.
	Execute(op []byte) []byte
	// ExecuteRead answers a read-only query against current state.
	// It must not modify state; it backs weakly consistent reads,
	// which bypass the agreement protocol.
	ExecuteRead(op []byte) []byte
	// Snapshot serializes the full application state canonically:
	// equal states yield byte-identical snapshots.
	Snapshot() []byte
	// Restore replaces the state with a previously taken snapshot.
	Restore(snapshot []byte) error
}
