package app

import (
	"fmt"
	"sort"

	"spider/internal/wire"
)

// OpKind identifies a key-value store operation.
type OpKind uint8

// Key-value operations.
const (
	OpPut OpKind = iota + 1 // write: set key to value
	OpGet                   // read: fetch value of key
	OpDel                   // write: remove key
	OpInc                   // write: increment a counter key by delta
)

// Op is one key-value store operation. Clients encode Ops as request
// payloads; the store decodes and applies them.
type Op struct {
	Kind  OpKind
	Key   string
	Value []byte
	Delta int64 // used by OpInc
}

// MarshalWire implements wire.Marshaler.
func (o *Op) MarshalWire(w *wire.Writer) {
	w.WriteU8(byte(o.Kind))
	w.WriteString(o.Key)
	w.WriteBytes(o.Value)
	w.WriteVarint(o.Delta)
}

// UnmarshalWire implements wire.Unmarshaler.
func (o *Op) UnmarshalWire(r *wire.Reader) {
	o.Kind = OpKind(r.ReadU8())
	o.Key = r.ReadString()
	o.Value = r.ReadBytes()
	o.Delta = r.ReadVarint()
}

// Result is the reply to an Op.
type Result struct {
	OK      bool   // operation understood and applied
	Found   bool   // key existed (Get/Del)
	Value   []byte // value (Get) or new counter encoding (Inc)
	Counter int64  // counter value after OpInc
}

// MarshalWire implements wire.Marshaler.
func (res *Result) MarshalWire(w *wire.Writer) {
	w.WriteBool(res.OK)
	w.WriteBool(res.Found)
	w.WriteBytes(res.Value)
	w.WriteVarint(res.Counter)
}

// UnmarshalWire implements wire.Unmarshaler.
func (res *Result) UnmarshalWire(r *wire.Reader) {
	res.OK = r.ReadBool()
	res.Found = r.ReadBool()
	res.Value = r.ReadBytes()
	res.Counter = r.ReadVarint()
}

// EncodeOp serializes an operation for use as a request payload.
func EncodeOp(op Op) []byte { return wire.Encode(&op) }

// OpKey returns the key an encoded operation addresses, for keyspace
// shard routing; ok is false when the payload is not a key-value
// operation.
func OpKey(opBytes []byte) (key string, ok bool) {
	var op Op
	if err := wire.Decode(opBytes, &op); err != nil || op.Kind == 0 {
		return "", false
	}
	return op.Key, true
}

// DecodeResult parses a reply payload produced by the store.
func DecodeResult(payload []byte) (Result, error) {
	var res Result
	if err := wire.Decode(payload, &res); err != nil {
		return Result{}, fmt.Errorf("app: decode result: %w", err)
	}
	return res, nil
}

// KVStore is a deterministic in-memory key-value store with canonical
// snapshots (keys serialized in sorted order). It implements
// Application.
type KVStore struct {
	data     map[string][]byte
	counters map[string]int64
}

var _ Application = (*KVStore)(nil)

// NewKVStore returns an empty store.
func NewKVStore() *KVStore {
	return &KVStore{
		data:     make(map[string][]byte),
		counters: make(map[string]int64),
	}
}

// Execute implements Application.
func (s *KVStore) Execute(opBytes []byte) []byte {
	var op Op
	if err := wire.Decode(opBytes, &op); err != nil {
		return wire.Encode(&Result{OK: false})
	}
	var res Result
	switch op.Kind {
	case OpPut:
		_, res.Found = s.data[op.Key]
		s.data[op.Key] = append([]byte(nil), op.Value...)
		res.OK = true
	case OpDel:
		_, res.Found = s.data[op.Key]
		delete(s.data, op.Key)
		res.OK = true
	case OpInc:
		s.counters[op.Key] += op.Delta
		res.OK = true
		res.Counter = s.counters[op.Key]
	case OpGet:
		// Get through the write path still works (a strongly
		// consistent read executed in order).
		res = s.get(op.Key)
	default:
		res.OK = false
	}
	return wire.Encode(&res)
}

// ExecuteRead implements Application; only OpGet is meaningful.
func (s *KVStore) ExecuteRead(opBytes []byte) []byte {
	var op Op
	if err := wire.Decode(opBytes, &op); err != nil || op.Kind != OpGet {
		return wire.Encode(&Result{OK: false})
	}
	res := s.get(op.Key)
	return wire.Encode(&res)
}

func (s *KVStore) get(key string) Result {
	if v, ok := s.data[key]; ok {
		return Result{OK: true, Found: true, Value: append([]byte(nil), v...)}
	}
	if c, ok := s.counters[key]; ok {
		return Result{OK: true, Found: true, Counter: c}
	}
	return Result{OK: true, Found: false}
}

// Snapshot implements Application. The encoding is canonical: keys are
// emitted in sorted order so equal states produce identical bytes.
func (s *KVStore) Snapshot() []byte {
	var w wire.Writer
	keys := make([]string, 0, len(s.data))
	for k := range s.data {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	w.WriteInt(len(keys))
	for _, k := range keys {
		w.WriteString(k)
		w.WriteBytes(s.data[k])
	}
	ckeys := make([]string, 0, len(s.counters))
	for k := range s.counters {
		ckeys = append(ckeys, k)
	}
	sort.Strings(ckeys)
	w.WriteInt(len(ckeys))
	for _, k := range ckeys {
		w.WriteString(k)
		w.WriteVarint(s.counters[k])
	}
	return w.Bytes()
}

// Restore implements Application.
func (s *KVStore) Restore(snapshot []byte) error {
	r := wire.NewReader(snapshot)
	n := r.ReadInt()
	if n < 0 {
		return fmt.Errorf("app: corrupt snapshot: negative size")
	}
	data := make(map[string][]byte, n)
	for i := 0; i < n && r.Err() == nil; i++ {
		k := r.ReadString()
		data[k] = r.ReadBytes()
	}
	cn := r.ReadInt()
	if cn < 0 {
		return fmt.Errorf("app: corrupt snapshot: negative counter size")
	}
	counters := make(map[string]int64, cn)
	for i := 0; i < cn && r.Err() == nil; i++ {
		k := r.ReadString()
		counters[k] = r.ReadVarint()
	}
	if err := r.Close(); err != nil {
		return fmt.Errorf("app: corrupt snapshot: %w", err)
	}
	s.data = data
	s.counters = counters
	return nil
}

// Len returns the number of stored keys (values plus counters),
// useful in tests and examples.
func (s *KVStore) Len() int { return len(s.data) + len(s.counters) }
