package app

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"spider/internal/wire"
)

func mustResult(t *testing.T, payload []byte) Result {
	t.Helper()
	res, err := DecodeResult(payload)
	if err != nil {
		t.Fatalf("decode result: %v", err)
	}
	return res
}

func TestPutGet(t *testing.T) {
	s := NewKVStore()
	res := mustResult(t, s.Execute(EncodeOp(Op{Kind: OpPut, Key: "a", Value: []byte("1")})))
	if !res.OK || res.Found {
		t.Errorf("first put = %+v", res)
	}
	res = mustResult(t, s.Execute(EncodeOp(Op{Kind: OpPut, Key: "a", Value: []byte("2")})))
	if !res.OK || !res.Found {
		t.Errorf("overwrite put = %+v", res)
	}
	res = mustResult(t, s.ExecuteRead(EncodeOp(Op{Kind: OpGet, Key: "a"})))
	if !res.OK || !res.Found || string(res.Value) != "2" {
		t.Errorf("get = %+v", res)
	}
	res = mustResult(t, s.ExecuteRead(EncodeOp(Op{Kind: OpGet, Key: "missing"})))
	if !res.OK || res.Found {
		t.Errorf("missing get = %+v", res)
	}
}

func TestGetThroughWritePath(t *testing.T) {
	s := NewKVStore()
	s.Execute(EncodeOp(Op{Kind: OpPut, Key: "k", Value: []byte("v")}))
	res := mustResult(t, s.Execute(EncodeOp(Op{Kind: OpGet, Key: "k"})))
	if !res.Found || string(res.Value) != "v" {
		t.Errorf("strong get = %+v", res)
	}
}

func TestDelete(t *testing.T) {
	s := NewKVStore()
	s.Execute(EncodeOp(Op{Kind: OpPut, Key: "k", Value: []byte("v")}))
	res := mustResult(t, s.Execute(EncodeOp(Op{Kind: OpDel, Key: "k"})))
	if !res.OK || !res.Found {
		t.Errorf("del = %+v", res)
	}
	res = mustResult(t, s.Execute(EncodeOp(Op{Kind: OpDel, Key: "k"})))
	if !res.OK || res.Found {
		t.Errorf("second del = %+v", res)
	}
	if s.Len() != 0 {
		t.Errorf("len = %d after delete", s.Len())
	}
}

func TestCounter(t *testing.T) {
	s := NewKVStore()
	res := mustResult(t, s.Execute(EncodeOp(Op{Kind: OpInc, Key: "c", Delta: 5})))
	if !res.OK || res.Counter != 5 {
		t.Errorf("inc = %+v", res)
	}
	res = mustResult(t, s.Execute(EncodeOp(Op{Kind: OpInc, Key: "c", Delta: -2})))
	if res.Counter != 3 {
		t.Errorf("second inc = %+v", res)
	}
	res = mustResult(t, s.ExecuteRead(EncodeOp(Op{Kind: OpGet, Key: "c"})))
	if !res.Found || res.Counter != 3 {
		t.Errorf("counter get = %+v", res)
	}
}

func TestExecuteGarbage(t *testing.T) {
	s := NewKVStore()
	res := mustResult(t, s.Execute([]byte{0xFF, 0x01, 0x02}))
	if res.OK {
		t.Error("garbage op accepted")
	}
	res = mustResult(t, s.ExecuteRead([]byte{0xFF}))
	if res.OK {
		t.Error("garbage read accepted")
	}
	// Writes through the read path are rejected.
	res = mustResult(t, s.ExecuteRead(EncodeOp(Op{Kind: OpPut, Key: "x", Value: []byte("y")})))
	if res.OK {
		t.Error("write accepted on read path")
	}
	res = mustResult(t, s.Execute(EncodeOp(Op{Kind: OpKind(99), Key: "x"})))
	if res.OK {
		t.Error("unknown op kind accepted")
	}
}

func TestReadDoesNotMutate(t *testing.T) {
	s := NewKVStore()
	s.Execute(EncodeOp(Op{Kind: OpPut, Key: "k", Value: []byte("v")}))
	before := s.Snapshot()
	s.ExecuteRead(EncodeOp(Op{Kind: OpGet, Key: "k"}))
	s.ExecuteRead(EncodeOp(Op{Kind: OpGet, Key: "other"}))
	if !bytes.Equal(before, s.Snapshot()) {
		t.Error("read mutated state")
	}
}

func TestSnapshotRestore(t *testing.T) {
	s := NewKVStore()
	for i := 0; i < 50; i++ {
		s.Execute(EncodeOp(Op{Kind: OpPut, Key: fmt.Sprintf("k%02d", i), Value: []byte{byte(i)}}))
	}
	s.Execute(EncodeOp(Op{Kind: OpInc, Key: "count", Delta: 42}))
	snap := s.Snapshot()

	restored := NewKVStore()
	if err := restored.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(restored.Snapshot(), snap) {
		t.Error("restored snapshot differs")
	}
	res := mustResult(t, restored.ExecuteRead(EncodeOp(Op{Kind: OpGet, Key: "k07"})))
	if !res.Found || res.Value[0] != 7 {
		t.Errorf("restored get = %+v", res)
	}
}

func TestRestoreCorrupt(t *testing.T) {
	s := NewKVStore()
	if err := s.Restore([]byte{0xFF, 0xFF, 0xFF}); err == nil {
		t.Error("corrupt snapshot accepted")
	}
	// A failed restore must not clobber existing state.
	s.Execute(EncodeOp(Op{Kind: OpPut, Key: "k", Value: []byte("v")}))
	if err := s.Restore([]byte{0x01}); err == nil {
		t.Error("truncated snapshot accepted")
	}
	res := mustResult(t, s.ExecuteRead(EncodeOp(Op{Kind: OpGet, Key: "k"})))
	if !res.Found {
		t.Error("state lost after failed restore")
	}
}

// TestDeterminism is the RSM property (Definition A.14): two stores
// that apply the same operation sequence have identical snapshots.
func TestDeterminism(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := NewKVStore(), NewKVStore()
		for i := 0; i < 200; i++ {
			op := Op{
				Kind:  OpKind(rng.Intn(4) + 1),
				Key:   fmt.Sprintf("k%d", rng.Intn(20)),
				Value: []byte{byte(rng.Intn(256))},
				Delta: int64(rng.Intn(100) - 50),
			}
			enc := EncodeOp(op)
			ra := a.Execute(enc)
			rb := b.Execute(enc)
			if !bytes.Equal(ra, rb) {
				return false
			}
		}
		return bytes.Equal(a.Snapshot(), b.Snapshot())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestOpWireRoundTrip(t *testing.T) {
	f := func(kind uint8, key string, value []byte, delta int64) bool {
		in := Op{Kind: OpKind(kind), Key: key, Value: value, Delta: delta}
		var out Op
		if err := wire.Decode(wire.Encode(&in), &out); err != nil {
			return false
		}
		return in.Kind == out.Kind && in.Key == out.Key &&
			bytes.Equal(in.Value, out.Value) && in.Delta == out.Delta
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
