// Package bftgeo implements the paper's "BFT" baseline (Section 5): a
// single PBFT group whose 3f+1 replicas are spread across geographic
// regions, one per region, each hosting the application. Clients
// submit requests to every replica and accept a result after f+1
// matching replies. The entire multi-phase consensus protocol runs
// over wide-area links — precisely the cost Spider avoids.
//
// The package also backs the "BFT-WV" baseline: configured with a
// WHEAT weighted-voting quorum policy and 3f+1+Δ replicas it becomes
// the weighted variant evaluated in Figure 10 (see the wv package).
package bftgeo

import (
	"errors"
	"fmt"
	"sync"

	"spider/internal/consensus"
	"spider/internal/consensus/pbft"
	"spider/internal/core"
	"spider/internal/crypto"
	"spider/internal/ids"
	"spider/internal/transport"
	"spider/internal/wire"
)

// Config parameterizes one baseline replica.
type Config struct {
	// Group is the replica group (3f+1, or 3f+1+Δ with a weighted
	// policy).
	Group ids.Group
	// Suite, Node: identity and transport.
	Suite crypto.Suite
	Node  transport.Node
	// App is the hosted application.
	App core.Application
	// Policy optionally overrides PBFT quorums (weighted voting).
	Policy pbft.QuorumPolicy
	// Consensus tunables; zero values use pbft defaults.
	Consensus pbft.Config
}

func (c *Config) validate() error {
	if c.Suite == nil || c.Node == nil || c.App == nil {
		return errors.New("bftgeo: suite, node and app required")
	}
	if !c.Group.Contains(c.Suite.Node()) {
		return fmt.Errorf("bftgeo: replica %v not in group", c.Suite.Node())
	}
	return nil
}

// Replica is one baseline replica: a PBFT member plus the application
// and client handling.
type Replica struct {
	cfg Config
	me  ids.NodeID

	mu      sync.Mutex
	replies map[ids.ClientID]cachedReply
	ag      *pbft.Replica
	stopped bool
}

type cachedReply struct {
	counter uint64
	result  []byte
}

// New creates a baseline replica; call Start to begin.
func New(cfg Config) (*Replica, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	r := &Replica{
		cfg:     cfg,
		me:      cfg.Suite.Node(),
		replies: make(map[ids.ClientID]cachedReply),
	}
	pcfg := cfg.Consensus
	pcfg.Group = cfg.Group
	pcfg.Suite = cfg.Suite
	pcfg.Node = cfg.Node
	pcfg.Stream = transport.MakeStream(transport.KindPBFT, uint32(cfg.Group.ID))
	pcfg.Deliver = r.deliver
	pcfg.Validate = r.validate
	pcfg.Policy = cfg.Policy
	ag, err := pbft.New(pcfg)
	if err != nil {
		return nil, err
	}
	r.ag = ag
	return r, nil
}

// Start launches consensus and registers the client handler.
func (r *Replica) Start() {
	r.cfg.Node.Handle(transport.MakeStream(transport.KindClient, uint32(r.cfg.Group.ID)), r.onClientFrame)
	r.ag.Start()
}

// Stop shuts the replica down.
func (r *Replica) Stop() {
	r.mu.Lock()
	if r.stopped {
		r.mu.Unlock()
		return
	}
	r.stopped = true
	r.mu.Unlock()
	r.ag.Stop()
}

// Consensus exposes the underlying PBFT instance (tests, leader
// placement in the harness).
func (r *Replica) Consensus() *pbft.Replica { return r.ag }

func (r *Replica) validate(payload []byte) error {
	var req core.ClientRequest
	if err := wire.Decode(payload, &req); err != nil {
		return err
	}
	return r.cfg.Suite.Verify(req.Client.Node(), crypto.DomainClientRequest, req.SigPayload(), req.Sig)
}

func (r *Replica) onClientFrame(from ids.NodeID, payload []byte) {
	req, err := core.OpenClientRequest(r.cfg.Suite, from, payload)
	if err != nil {
		return
	}
	switch req.Kind {
	case core.KindWeakRead:
		r.mu.Lock()
		if r.stopped {
			r.mu.Unlock()
			return
		}
		result := r.cfg.App.ExecuteRead(req.Op)
		r.mu.Unlock()
		r.reply(req.Client, req.Counter, result)
	case core.KindWrite, core.KindStrongRead:
		r.mu.Lock()
		cached, ok := r.replies[req.Client]
		stopped := r.stopped
		r.mu.Unlock()
		if stopped {
			return
		}
		if ok && cached.counter >= req.Counter {
			if cached.counter == req.Counter {
				r.reply(req.Client, req.Counter, cached.result)
			}
			return
		}
		if err := r.cfg.Suite.Verify(req.Client.Node(), crypto.DomainClientRequest, req.SigPayload(), req.Sig); err != nil {
			return
		}
		r.ag.Order(wire.Encode(req))
	}
}

// deliver executes ordered batches request by request (the baseline
// has no downstream data plane to hand whole batches to).
func (r *Replica) deliver(b consensus.Batch) {
	for _, payload := range b.Payloads {
		r.deliverOne(payload)
	}
}

func (r *Replica) deliverOne(payload []byte) {
	var req core.ClientRequest
	if err := wire.Decode(payload, &req); err != nil {
		return
	}
	r.mu.Lock()
	if r.stopped {
		r.mu.Unlock()
		return
	}
	if cached, ok := r.replies[req.Client]; ok && cached.counter >= req.Counter {
		r.mu.Unlock()
		return // at-most-once
	}
	var result []byte
	if req.Kind == core.KindStrongRead {
		result = r.cfg.App.ExecuteRead(req.Op)
	} else {
		result = r.cfg.App.Execute(req.Op)
	}
	r.replies[req.Client] = cachedReply{counter: req.Counter, result: result}
	r.mu.Unlock()
	r.reply(req.Client, req.Counter, result)
}

func (r *Replica) reply(client ids.ClientID, counter uint64, result []byte) {
	core.SendReply(r.cfg.Suite, r.cfg.Node, client, counter, result)
}
