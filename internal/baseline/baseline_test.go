// Package baseline_test exercises the three baseline systems end to
// end over memnet, sharing the client protocol with Spider.
package baseline_test

import (
	"fmt"
	"testing"
	"time"

	"spider/internal/app"
	"spider/internal/baseline/bftgeo"
	"spider/internal/baseline/hft"
	"spider/internal/baseline/wv"
	"spider/internal/consensus/pbft"
	"spider/internal/core"
	"spider/internal/crypto"
	"spider/internal/ids"
	"spider/internal/transport/memnet"
)

func newClient(t *testing.T, net *memnet.Network, suites map[ids.NodeID]crypto.Suite, id ids.ClientID, group ids.Group) *core.Client {
	t.Helper()
	c, err := core.NewClient(core.ClientConfig{
		ID:       id,
		Group:    group,
		Suite:    suites[id.Node()],
		Node:     net.Node(id.Node()),
		Retry:    300 * time.Millisecond,
		Deadline: 15 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func putOp(key, value string) []byte {
	return app.EncodeOp(app.Op{Kind: app.OpPut, Key: key, Value: []byte(value)})
}

func getOp(key string) []byte {
	return app.EncodeOp(app.Op{Kind: app.OpGet, Key: key})
}

func checkFound(t *testing.T, payload []byte, want string) {
	t.Helper()
	res, err := app.DecodeResult(payload)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || string(res.Value) != want {
		t.Fatalf("result = %+v, want %q", res, want)
	}
}

// weakReadFresh retries a weak read until it observes want: weakly
// consistent reads may return stale values under concurrency
// (Section 3.3), and clients react by retrying.
func weakReadFresh(t *testing.T, client *core.Client, key, want string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		payload, err := client.WeakRead(getOp(key))
		if err == nil {
			if res, derr := app.DecodeResult(payload); derr == nil && res.Found && string(res.Value) == want {
				return
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("weak read of %q never converged to %q", key, want)
}

func TestBFTBaseline(t *testing.T) {
	group := ids.Group{ID: 1, Members: []ids.NodeID{1, 2, 3, 4}, F: 1}
	all := append([]ids.NodeID{}, group.Members...)
	all = append(all, 101)
	suites := crypto.NewSuites(all, crypto.SuiteInsecure)
	net := memnet.New(memnet.Options{})
	defer net.Close()

	var replicas []*bftgeo.Replica
	for _, m := range group.Members {
		r, err := bftgeo.New(bftgeo.Config{
			Group: group,
			Suite: suites[m],
			Node:  net.Node(m),
			App:   app.NewKVStore(),
			Consensus: pbft.Config{
				RequestTimeout: 500 * time.Millisecond,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		replicas = append(replicas, r)
		r.Start()
	}
	defer func() {
		for _, r := range replicas {
			r.Stop()
		}
	}()

	client := newClient(t, net, suites, 101, group)
	for i := 0; i < 5; i++ {
		if _, err := client.Write(putOp(fmt.Sprintf("k%d", i), "v")); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	weakReadFresh(t, client, "k4", "v")

	got, err := client.StrongRead(getOp("k0"))
	if err != nil {
		t.Fatalf("strong read: %v", err)
	}
	checkFound(t, got, "v")
}

func TestWVBaseline(t *testing.T) {
	// 3f+1+Δ = 5 replicas, f=1, Δ=1; replicas 1 and 2 carry Vmax.
	group := ids.Group{ID: 1, Members: []ids.NodeID{1, 2, 3, 4, 5}, F: 1}
	all := append([]ids.NodeID{}, group.Members...)
	all = append(all, 101)
	suites := crypto.NewSuites(all, crypto.SuiteInsecure)
	net := memnet.New(memnet.Options{})
	defer net.Close()

	var replicas []*bftgeo.Replica
	for _, m := range group.Members {
		r, err := wv.New(wv.Config{
			Base: bftgeo.Config{
				Group: group,
				Suite: suites[m],
				Node:  net.Node(m),
				App:   app.NewKVStore(),
				Consensus: pbft.Config{
					RequestTimeout: 500 * time.Millisecond,
				},
			},
			Delta: 1,
			Vmax:  []ids.NodeID{1, 2},
		})
		if err != nil {
			t.Fatal(err)
		}
		replicas = append(replicas, r)
		r.Start()
	}
	defer func() {
		for _, r := range replicas {
			r.Stop()
		}
	}()

	client := newClient(t, net, suites, 101, group)
	if _, err := client.Write(putOp("weighted", "quorum")); err != nil {
		t.Fatalf("write: %v", err)
	}
	weakReadFresh(t, client, "weighted", "quorum")
}

func TestWVRejectsBadConfig(t *testing.T) {
	group := ids.Group{ID: 1, Members: []ids.NodeID{1, 2, 3, 4, 5}, F: 1}
	suites := crypto.NewSuites(group.Members, crypto.SuiteInsecure)
	net := memnet.New(memnet.Options{})
	defer net.Close()
	_, err := wv.New(wv.Config{
		Base: bftgeo.Config{
			Group: group,
			Suite: suites[1],
			Node:  net.Node(1),
			App:   app.NewKVStore(),
		},
		Delta: 1,
		Vmax:  []ids.NodeID{1}, // needs exactly 2f
	})
	if err == nil {
		t.Fatal("bad Vmax count accepted")
	}
}

// buildHFT assembles an HFT deployment with the given number of sites
// (4 replicas each) and returns the sites plus a stop function.
func buildHFT(t *testing.T, net *memnet.Network, suites map[ids.NodeID]crypto.Suite, sites []ids.Group, leader int) func() {
	t.Helper()
	var replicas []*hft.Replica
	for si, site := range sites {
		for _, m := range site.Members {
			r, err := hft.New(hft.Config{
				Sites:      sites,
				LeaderSite: leader,
				Site:       si,
				Suite:      suites[m],
				Node:       net.Node(m),
				App:        app.NewKVStore(),
				Consensus: pbft.Config{
					RequestTimeout: 500 * time.Millisecond,
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			replicas = append(replicas, r)
			r.Start()
		}
	}
	return func() {
		for _, r := range replicas {
			r.Stop()
		}
	}
}

func hftFixture(t *testing.T) (*memnet.Network, map[ids.NodeID]crypto.Suite, []ids.Group) {
	t.Helper()
	var sites []ids.Group
	var all []ids.NodeID
	for s := 0; s < 3; s++ {
		base := ids.NodeID(10 * (s + 1))
		site := ids.Group{
			ID:      ids.GroupID(10 * (s + 1)),
			Members: []ids.NodeID{base + 1, base + 2, base + 3, base + 4},
			F:       1,
		}
		sites = append(sites, site)
		all = append(all, site.Members...)
	}
	all = append(all, 101, 102)
	suites := crypto.NewSuites(all, crypto.SuiteInsecure)
	return memnet.New(memnet.Options{}), suites, sites
}

func TestHFTLeaderSiteClients(t *testing.T) {
	net, suites, sites := hftFixture(t)
	defer net.Close()
	stop := buildHFT(t, net, suites, sites, 0)
	defer stop()

	// Client at the leader site: orders go straight through the
	// leader site's local consensus.
	client := newClient(t, net, suites, 101, sites[0])
	for i := 0; i < 5; i++ {
		if _, err := client.Write(putOp(fmt.Sprintf("k%d", i), "v")); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	weakReadFresh(t, client, "k4", "v")
}

func TestHFTRemoteSiteClients(t *testing.T) {
	net, suites, sites := hftFixture(t)
	defer net.Close()
	stop := buildHFT(t, net, suites, sites, 0)
	defer stop()

	// Client at a non-leader site: request is forwarded to the leader
	// site with a threshold signature and the reply comes from the
	// origin site after global ordering.
	client := newClient(t, net, suites, 102, sites[2])
	if _, err := client.Write(putOp("remote", "write")); err != nil {
		t.Fatalf("remote write: %v", err)
	}
	weakReadFresh(t, client, "remote", "write")
}

func TestHFTCrossSiteConsistency(t *testing.T) {
	net, suites, sites := hftFixture(t)
	defer net.Close()
	stop := buildHFT(t, net, suites, sites, 1) // leader site 1
	defer stop()

	writer := newClient(t, net, suites, 101, sites[0])
	reader := newClient(t, net, suites, 102, sites[2])

	if _, err := writer.Write(putOp("shared", "state")); err != nil {
		t.Fatalf("write: %v", err)
	}
	// All sites execute the same global order; the other site's weak
	// reads converge.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		got, err := reader.WeakRead(getOp("shared"))
		if err == nil {
			if res, derr := app.DecodeResult(got); derr == nil && res.Found && string(res.Value) == "state" {
				return
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("write never reached the other site")
}
