// Package hft implements the paper's "HFT" baseline: a hierarchical
// architecture in the style of Steward (Amir et al.), where every
// geographic site hosts a full BFT cluster of 3f+1 replicas and the
// wide-area protocol is crash-tolerant because a site, as a whole,
// only fails by crashing. Sites speak with threshold signatures so a
// single wide-area message proves that 2f+1 site members agreed.
//
// Protocol (normal case, matching the latency structure the paper
// measures):
//
//  1. A client submits to its local site. Non-leader sites order the
//     request in their site-local PBFT, threshold-sign a Forward, and
//     their representative ships it to the leader site.
//  2. The leader site orders all requests (its own clients' directly)
//     in its site-local PBFT; the local sequence number is the global
//     sequence number. Leader-site members threshold-sign a Proposal,
//     which the representative distributes to every site.
//  3. Every site threshold-signs an Accept for the proposal; a replica
//     executes a global sequence number once it holds the Proposal and
//     Accepts from a majority of sites (the Proposal counting as the
//     leader site's accept). The origin site's replicas reply to the
//     client.
//
// Simplifications vs. full Steward, documented in DESIGN.md: the site
// representative is static (fault handling at the representative level
// is out of the evaluated scope), threshold signatures are emulated as
// 2f+1 multi-signatures, and the global level has no leader-site
// change (the paper's experiments fix the leader site per run).
package hft

import (
	"errors"
	"fmt"
	"sync"

	"spider/internal/consensus"
	"spider/internal/consensus/pbft"
	"spider/internal/core"
	"spider/internal/crypto"
	"spider/internal/ids"
	"spider/internal/transport"
	"spider/internal/wire"
)

// Config parameterizes one HFT replica.
type Config struct {
	// Sites lists every site's replica group, in a globally agreed
	// order. Site groups need 3f+1 members each.
	Sites []ids.Group
	// LeaderSite indexes into Sites.
	LeaderSite int
	// Site indexes this replica's own site.
	Site int
	// Suite, Node: identity and transport.
	Suite crypto.Suite
	Node  transport.Node
	// App is the hosted application.
	App core.Application
	// Consensus carries site-local PBFT tunables (timeouts etc.).
	Consensus pbft.Config
}

func (c *Config) validate() error {
	if len(c.Sites) == 0 {
		return errors.New("hft: sites required")
	}
	if c.LeaderSite < 0 || c.LeaderSite >= len(c.Sites) {
		return errors.New("hft: leader site out of range")
	}
	if c.Site < 0 || c.Site >= len(c.Sites) {
		return errors.New("hft: own site out of range")
	}
	if c.Suite == nil || c.Node == nil || c.App == nil {
		return errors.New("hft: suite, node and app required")
	}
	if !c.Sites[c.Site].Contains(c.Suite.Node()) {
		return fmt.Errorf("hft: replica %v not in site %d", c.Suite.Node(), c.Site)
	}
	return nil
}

// --- wire messages ---------------------------------------------------------

const (
	tagForward wire.TypeTag = iota + 1
	tagProposal
	tagAccept
)

// forwardMsg ships a locally ordered request to the leader site.
type forwardMsg struct {
	Origin ids.GroupID
	Req    core.ClientRequest
	TS     crypto.ThresholdSig
}

func (m *forwardMsg) MarshalWire(w *wire.Writer) {
	w.WriteGroup(m.Origin)
	m.Req.MarshalWire(w)
	m.TS.MarshalWire(w)
}

func (m *forwardMsg) UnmarshalWire(r *wire.Reader) {
	m.Origin = r.ReadGroup()
	m.Req.UnmarshalWire(r)
	m.TS.UnmarshalWire(r)
}

func forwardPayload(origin ids.GroupID, req *core.ClientRequest) []byte {
	var w wire.Writer
	w.WriteGroup(origin)
	req.MarshalWire(&w)
	return w.Bytes()
}

// proposalMsg announces the global ordering decision of the leader
// site.
type proposalMsg struct {
	GSeq   ids.SeqNr
	Origin ids.GroupID
	Req    core.ClientRequest
	TS     crypto.ThresholdSig
}

func (m *proposalMsg) MarshalWire(w *wire.Writer) {
	w.WriteSeq(m.GSeq)
	w.WriteGroup(m.Origin)
	m.Req.MarshalWire(w)
	m.TS.MarshalWire(w)
}

func (m *proposalMsg) UnmarshalWire(r *wire.Reader) {
	m.GSeq = r.ReadSeq()
	m.Origin = r.ReadGroup()
	m.Req.UnmarshalWire(r)
	m.TS.UnmarshalWire(r)
}

func proposalPayload(gseq ids.SeqNr, origin ids.GroupID, req *core.ClientRequest) []byte {
	var w wire.Writer
	w.WriteSeq(gseq)
	w.WriteGroup(origin)
	req.MarshalWire(&w)
	return w.Bytes()
}

// acceptMsg is a site's vote for a proposal.
type acceptMsg struct {
	GSeq   ids.SeqNr
	Site   ids.GroupID
	Digest crypto.Digest
	TS     crypto.ThresholdSig
}

func (m *acceptMsg) MarshalWire(w *wire.Writer) {
	w.WriteSeq(m.GSeq)
	w.WriteGroup(m.Site)
	w.WriteRaw(m.Digest[:])
	m.TS.MarshalWire(w)
}

func (m *acceptMsg) UnmarshalWire(r *wire.Reader) {
	m.GSeq = r.ReadSeq()
	m.Site = r.ReadGroup()
	copy(m.Digest[:], r.ReadRaw(crypto.DigestSize))
	m.TS.UnmarshalWire(r)
}

func acceptPayload(gseq ids.SeqNr, site ids.GroupID, digest crypto.Digest) []byte {
	var w wire.Writer
	w.WriteSeq(gseq)
	w.WriteGroup(site)
	w.WriteRaw(digest[:])
	return w.Bytes()
}

var registry = func() *wire.Registry {
	r := wire.NewRegistry()
	r.Register(tagForward, "forward", func() wire.Message { return new(forwardMsg) })
	r.Register(tagProposal, "proposal", func() wire.Message { return new(proposalMsg) })
	r.Register(tagAccept, "accept", func() wire.Message { return new(acceptMsg) })
	return r
}()

// local item kinds ordered by the site-local PBFT.
const (
	itemForward byte = 1 // non-leader site: request to forward
	itemGlobal  byte = 2 // leader site: request to order globally
)

// localItem is the payload of the site-local consensus.
type localItem struct {
	Kind   byte
	Origin ids.GroupID
	Req    core.ClientRequest
	TS     crypto.ThresholdSig // forward proof when Origin is remote
}

func (m *localItem) MarshalWire(w *wire.Writer) {
	w.WriteU8(m.Kind)
	w.WriteGroup(m.Origin)
	m.Req.MarshalWire(w)
	m.TS.MarshalWire(w)
}

func (m *localItem) UnmarshalWire(r *wire.Reader) {
	m.Kind = r.ReadU8()
	m.Origin = r.ReadGroup()
	m.Req.UnmarshalWire(r)
	m.TS.UnmarshalWire(r)
}

// --- replica ----------------------------------------------------------------

// pendingGlobal tracks one global sequence number until executable.
type pendingGlobal struct {
	proposal *proposalMsg
	accepts  map[ids.GroupID]bool
}

// shareKey identifies a threshold-signing session at the
// representative.
type shareKey struct {
	digest crypto.Digest
}

// Replica is one HFT replica.
type Replica struct {
	cfg  Config
	me   ids.NodeID
	site ids.Group
	rep  ids.NodeID // this site's static representative

	mu       sync.Mutex
	stopped  bool
	local    *pbft.Replica
	replies  map[ids.ClientID]cachedReply
	pending  map[ids.SeqNr]*pendingGlobal
	lastExec ids.SeqNr
	shares   map[shareKey]*shareSession
}

type cachedReply struct {
	counter uint64
	result  []byte
}

// shareSession accumulates threshold shares at the representative.
type shareSession struct {
	payload []byte
	shares  []crypto.Share
	sent    bool
	build   func(ts crypto.ThresholdSig) // invoked once the threshold is met
}

// New creates an HFT replica; call Start to begin.
func New(cfg Config) (*Replica, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	site := cfg.Sites[cfg.Site]
	r := &Replica{
		cfg:     cfg,
		me:      cfg.Suite.Node(),
		site:    site,
		rep:     site.Members[0],
		replies: make(map[ids.ClientID]cachedReply),
		pending: make(map[ids.SeqNr]*pendingGlobal),
		shares:  make(map[shareKey]*shareSession),
	}
	pcfg := cfg.Consensus
	pcfg.Group = site
	pcfg.Suite = cfg.Suite
	pcfg.Node = cfg.Node
	pcfg.Stream = transport.MakeStream(transport.KindPBFT, uint32(site.ID))
	pcfg.Deliver = r.deliverLocal
	pcfg.Validate = r.validateLocal
	local, err := pbft.New(pcfg)
	if err != nil {
		return nil, err
	}
	r.local = local
	return r, nil
}

// Start launches the site-local consensus and handlers.
func (r *Replica) Start() {
	r.cfg.Node.Handle(transport.MakeStream(transport.KindClient, uint32(r.site.ID)), r.onClientFrame)
	r.cfg.Node.Handle(transport.MakeStream(transport.KindHFT, uint32(r.site.ID)), r.onWANFrame)
	if r.me == r.rep {
		r.cfg.Node.Handle(r.shareStream(), r.onShareFrame)
	}
	r.local.Start()
}

// Stop shuts the replica down.
func (r *Replica) Stop() {
	r.mu.Lock()
	if r.stopped {
		r.mu.Unlock()
		return
	}
	r.stopped = true
	r.mu.Unlock()
	r.local.Stop()
}

func (r *Replica) isLeaderSite() bool { return r.cfg.Site == r.cfg.LeaderSite }

func (r *Replica) threshold() int { return 2*r.site.F + 1 }

// majority is the number of site votes (proposal + accepts) needed to
// execute: ⌊S/2⌋+1.
func (r *Replica) majority() int { return len(r.cfg.Sites)/2 + 1 }

// --- client handling --------------------------------------------------------

func (r *Replica) onClientFrame(from ids.NodeID, payload []byte) {
	req, err := core.OpenClientRequest(r.cfg.Suite, from, payload)
	if err != nil {
		return
	}
	switch req.Kind {
	case core.KindWeakRead:
		r.mu.Lock()
		if r.stopped {
			r.mu.Unlock()
			return
		}
		result := r.cfg.App.ExecuteRead(req.Op)
		r.mu.Unlock()
		core.SendReply(r.cfg.Suite, r.cfg.Node, req.Client, req.Counter, result)
	case core.KindWrite, core.KindStrongRead:
		r.mu.Lock()
		cached, ok := r.replies[req.Client]
		stopped := r.stopped
		r.mu.Unlock()
		if stopped {
			return
		}
		if ok && cached.counter >= req.Counter {
			if cached.counter == req.Counter {
				core.SendReply(r.cfg.Suite, r.cfg.Node, req.Client, req.Counter, cached.result)
			}
			return
		}
		if err := r.cfg.Suite.Verify(req.Client.Node(), crypto.DomainClientRequest, req.SigPayload(), req.Sig); err != nil {
			return
		}
		kind := itemForward
		if r.isLeaderSite() {
			kind = itemGlobal
		}
		item := localItem{Kind: kind, Origin: r.site.ID, Req: *req}
		r.local.Order(wire.Encode(&item))
	}
}

// --- site-local consensus ----------------------------------------------------

// validateLocal vets locally ordered items (A-Validity of the site
// protocol).
func (r *Replica) validateLocal(payload []byte) error {
	var item localItem
	if err := wire.Decode(payload, &item); err != nil {
		return err
	}
	if item.Kind == itemGlobal && item.Origin != r.site.ID {
		// Remote request at the leader site: the forward's threshold
		// signature vouches for it.
		origin, ok := r.siteByID(item.Origin)
		if !ok {
			return fmt.Errorf("hft: unknown origin site %v", item.Origin)
		}
		return crypto.VerifyThreshold(r.cfg.Suite, origin, 2*origin.F+1,
			crypto.DomainHFTGlobal, forwardPayload(item.Origin, &item.Req), item.TS)
	}
	return r.cfg.Suite.Verify(item.Req.Client.Node(), crypto.DomainClientRequest,
		item.Req.SigPayload(), item.Req.Sig)
}

func (r *Replica) siteByID(id ids.GroupID) (ids.Group, bool) {
	for _, s := range r.cfg.Sites {
		if s.ID == id {
			return s, true
		}
	}
	return ids.Group{}, false
}

// deliverLocal handles site-locally ordered batches item by item.
func (r *Replica) deliverLocal(b consensus.Batch) {
	for i, payload := range b.Payloads {
		r.deliverLocalOne(b.Start+ids.SeqNr(i), payload)
	}
}

func (r *Replica) deliverLocalOne(seq ids.SeqNr, payload []byte) {
	var item localItem
	if err := wire.Decode(payload, &item); err != nil {
		return
	}
	switch {
	case item.Kind == itemForward && !r.isLeaderSite():
		// Threshold-sign the forward; the representative ships it.
		body := forwardPayload(r.site.ID, &item.Req)
		r.contributeShare(body, func(ts crypto.ThresholdSig) {
			msg := &forwardMsg{Origin: r.site.ID, Req: item.Req, TS: ts}
			r.sendToSite(r.cfg.Sites[r.cfg.LeaderSite], registry.EncodeFrame(tagForward, msg))
		})
	case item.Kind == itemGlobal && r.isLeaderSite():
		// The local sequence number is the global sequence number.
		body := proposalPayload(seq, item.Origin, &item.Req)
		r.contributeShare(body, func(ts crypto.ThresholdSig) {
			msg := &proposalMsg{GSeq: seq, Origin: item.Origin, Req: item.Req, TS: ts}
			frame := registry.EncodeFrame(tagProposal, msg)
			for _, site := range r.cfg.Sites {
				r.sendToSite(site, frame)
			}
		})
	case item.Kind == itemForward && r.isLeaderSite():
		// A leader-site replica should have ordered this as global;
		// tolerate by re-ordering with the right kind.
		item.Kind = itemGlobal
		r.local.Order(wire.Encode(&item))
	}
}

// contributeShare signs the payload and routes the share to the
// representative (possibly ourselves). The build callback runs on the
// representative once 2f+1 shares are collected.
func (r *Replica) contributeShare(payload []byte, build func(crypto.ThresholdSig)) {
	share := crypto.SignShare(r.cfg.Suite, crypto.DomainHFTGlobal, payload)
	if r.me == r.rep {
		r.collectShare(payload, share, build)
		return
	}
	// Ship the share to the representative: a signed share message
	// needs no extra authentication (the share signature is checked
	// against the payload digest at the collector).
	var w wire.Writer
	w.WriteBytes(payload)
	share.MarshalWire(&w)
	r.cfg.Node.Send(r.rep, r.shareStream(), w.Bytes())
}

func (r *Replica) shareStream() transport.Stream {
	return transport.MakeStream(transport.KindHFT, uint32(r.site.ID)|0x800000)
}

// onShareFrame collects shares at the representative.
func (r *Replica) onShareFrame(from ids.NodeID, payload []byte) {
	rd := wire.NewReader(payload)
	body := rd.ReadBytes()
	var share crypto.Share
	share.UnmarshalWire(rd)
	if rd.Close() != nil || share.Node != from || !r.site.Contains(from) {
		return
	}
	if err := r.cfg.Suite.Verify(from, crypto.DomainHFTGlobal, body, share.Sig); err != nil {
		return
	}
	r.collectShare(body, share, nil)
}

// collectShare adds one share; build may be nil when the session
// already exists (it is installed by the representative's own
// contribution, which always happens since the representative also
// orders the item).
func (r *Replica) collectShare(payload []byte, share crypto.Share, build func(crypto.ThresholdSig)) {
	key := shareKey{digest: crypto.Hash(payload)}
	r.mu.Lock()
	sess, ok := r.shares[key]
	if !ok {
		sess = &shareSession{payload: payload}
		r.shares[key] = sess
	}
	if build != nil {
		sess.build = build
	}
	sess.shares = append(sess.shares, share)
	ready := !sess.sent && sess.build != nil
	var ts crypto.ThresholdSig
	if ready {
		var okc bool
		ts, okc = crypto.Combine(sess.shares, r.threshold())
		ready = okc
		if ready {
			sess.sent = true
		}
	}
	build = sess.build
	r.mu.Unlock()
	if ready {
		build(ts)
	}
}

// sendToSite ships a frame to every member of a site.
func (r *Replica) sendToSite(site ids.Group, frame []byte) {
	stream := transport.MakeStream(transport.KindHFT, uint32(site.ID))
	r.cfg.Node.Multicast(site.Members, stream, frame)
}

// --- global protocol ----------------------------------------------------------

func (r *Replica) onWANFrame(from ids.NodeID, payload []byte) {
	tag, msg, err := registry.DecodeFrame(payload)
	if err != nil {
		return
	}
	switch tag {
	case tagForward:
		r.onForward(msg.(*forwardMsg))
	case tagProposal:
		r.onProposal(msg.(*proposalMsg))
	case tagAccept:
		r.onAccept(msg.(*acceptMsg))
	}
	_ = from
}

func (r *Replica) onForward(m *forwardMsg) {
	if !r.isLeaderSite() {
		return
	}
	origin, ok := r.siteByID(m.Origin)
	if !ok || origin.ID == r.site.ID {
		return
	}
	if err := crypto.VerifyThreshold(r.cfg.Suite, origin, 2*origin.F+1,
		crypto.DomainHFTGlobal, forwardPayload(m.Origin, &m.Req), m.TS); err != nil {
		return
	}
	r.mu.Lock()
	cached, seen := r.replies[m.Req.Client]
	stopped := r.stopped
	r.mu.Unlock()
	if stopped || (seen && cached.counter >= m.Req.Counter) {
		return
	}
	item := localItem{Kind: itemGlobal, Origin: m.Origin, Req: m.Req, TS: m.TS}
	r.local.Order(wire.Encode(&item))
}

func (r *Replica) onProposal(m *proposalMsg) {
	leader := r.cfg.Sites[r.cfg.LeaderSite]
	if err := crypto.VerifyThreshold(r.cfg.Suite, leader, 2*leader.F+1,
		crypto.DomainHFTGlobal, proposalPayload(m.GSeq, m.Origin, &m.Req), m.TS); err != nil {
		return
	}
	r.mu.Lock()
	if r.stopped {
		r.mu.Unlock()
		return
	}
	p := r.pendingLocked(m.GSeq)
	first := p.proposal == nil
	if first {
		p.proposal = m
	}
	r.mu.Unlock()
	if !first {
		return
	}

	// Vote: threshold-sign an accept and let the representative ship
	// it to every other site. The leader site's proposal is its vote.
	if !r.isLeaderSite() {
		digest := crypto.Hash(proposalPayload(m.GSeq, m.Origin, &m.Req))
		body := acceptPayload(m.GSeq, r.site.ID, digest)
		gseq := m.GSeq
		r.contributeShare(body, func(ts crypto.ThresholdSig) {
			accept := &acceptMsg{GSeq: gseq, Site: r.site.ID, Digest: digest, TS: ts}
			frame := registry.EncodeFrame(tagAccept, accept)
			for _, site := range r.cfg.Sites {
				r.sendToSite(site, frame)
			}
		})
	}
	r.tryExecute()
}

func (r *Replica) onAccept(m *acceptMsg) {
	site, ok := r.siteByID(m.Site)
	if !ok {
		return
	}
	if err := crypto.VerifyThreshold(r.cfg.Suite, site, 2*site.F+1,
		crypto.DomainHFTGlobal, acceptPayload(m.GSeq, m.Site, m.Digest), m.TS); err != nil {
		return
	}
	r.mu.Lock()
	if r.stopped {
		r.mu.Unlock()
		return
	}
	p := r.pendingLocked(m.GSeq)
	p.accepts[m.Site] = true
	r.mu.Unlock()
	r.tryExecute()
}

func (r *Replica) pendingLocked(gseq ids.SeqNr) *pendingGlobal {
	p, ok := r.pending[gseq]
	if !ok {
		p = &pendingGlobal{accepts: make(map[ids.GroupID]bool)}
		r.pending[gseq] = p
	}
	return p
}

// tryExecute runs every executable global sequence number in order.
func (r *Replica) tryExecute() {
	for {
		r.mu.Lock()
		if r.stopped {
			r.mu.Unlock()
			return
		}
		next := r.lastExec + 1
		p, ok := r.pending[next]
		if !ok || p.proposal == nil {
			r.mu.Unlock()
			return
		}
		votes := len(p.accepts) + 1 // proposal = leader site's vote
		if votes < r.majority() {
			r.mu.Unlock()
			return
		}
		req := &p.proposal.Req
		origin := p.proposal.Origin
		delete(r.pending, next)
		r.lastExec = next

		var result []byte
		executed := false
		if cached, seen := r.replies[req.Client]; !seen || cached.counter < req.Counter {
			if req.Kind == core.KindStrongRead {
				result = r.cfg.App.ExecuteRead(req.Op)
			} else {
				result = r.cfg.App.Execute(req.Op)
			}
			r.replies[req.Client] = cachedReply{counter: req.Counter, result: result}
			executed = true
		}
		mine := origin == r.site.ID
		r.mu.Unlock()

		if executed && mine {
			core.SendReply(r.cfg.Suite, r.cfg.Node, req.Client, req.Counter, result)
		}
	}
}
