// Package wv implements the paper's "BFT-WV" baseline (the adaptability
// experiment, Figure 10): the BFT baseline extended with WHEAT-style
// weighted voting. The system runs 3f+1+Δ replicas — one per client
// region — and assigns the high vote weight Vmax to the 2f
// best-connected replicas so quorums form among the closest nodes.
package wv

import (
	"spider/internal/baseline/bftgeo"
	"spider/internal/consensus/pbft"
	"spider/internal/ids"
)

// Config parameterizes one weighted-voting replica.
type Config struct {
	// Base is the underlying BFT baseline configuration; its Group
	// must have 3f+1+Delta members.
	Base bftgeo.Config
	// Delta is the number of extra replicas beyond 3f+1.
	Delta int
	// Vmax lists the 2f replicas carrying the high weight; the paper
	// places them at the best-connected sites.
	Vmax []ids.NodeID
}

// New creates a weighted-voting replica: the BFT baseline with a WHEAT
// quorum policy.
func New(cfg Config) (*bftgeo.Replica, error) {
	policy, err := pbft.NewWheatQuorum(cfg.Base.Group, cfg.Delta, cfg.Vmax)
	if err != nil {
		return nil, err
	}
	cfg.Base.Policy = policy
	return bftgeo.New(cfg.Base)
}
