package storage

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func openStore(t *testing.T, dir string) *DirStore {
	t.Helper()
	s, err := Open(dir)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	return s
}

func TestLoadEmpty(t *testing.T) {
	s := openStore(t, t.TempDir())
	defer s.Close()
	img, err := s.Load()
	if err != nil || img != nil {
		t.Fatalf("empty dir: img=%v err=%v, want nil, nil", img, err)
	}
}

func TestCheckpointSuffixRoundtrip(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	s.SaveCheckpoint(16, []byte("state@16"))
	for pos := uint64(5); pos <= 9; pos++ {
		s.Append(pos, []byte(fmt.Sprintf("batch-%d", pos)))
	}
	s.SaveMeta([]byte{0, 0, 0, 7})
	if err := s.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	s2 := openStore(t, dir)
	defer s2.Close()
	img, err := s2.Load()
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if img.Seq != 16 || string(img.State) != "state@16" {
		t.Fatalf("checkpoint = (%d, %q)", img.Seq, img.State)
	}
	if !bytes.Equal(img.Meta, []byte{0, 0, 0, 7}) {
		t.Fatalf("meta = %v", img.Meta)
	}
	if len(img.Suffix) != 5 {
		t.Fatalf("suffix length = %d, want 5 (%v)", len(img.Suffix), img.Damage)
	}
	for i, e := range img.Suffix {
		wantPos := uint64(5 + i)
		if e.Pos != wantPos || string(e.Payload) != fmt.Sprintf("batch-%d", wantPos) {
			t.Fatalf("suffix[%d] = (%d, %q)", i, e.Pos, e.Payload)
		}
	}
	if len(img.Damage) != 0 {
		t.Fatalf("unexpected damage: %v", img.Damage)
	}
}

// TestCheckpointTruncatesLog: a checkpoint covers the suffix written
// before it, so the segment restarts empty; only later appends
// survive.
func TestCheckpointTruncatesLog(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	s.Append(1, []byte("old-1"))
	s.Append(2, []byte("old-2"))
	if err := s.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
	s.SaveCheckpoint(8, []byte("state@8"))
	s.Append(3, []byte("new-3"))
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	img, err := LoadDir(dir)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if img.Seq != 8 {
		t.Fatalf("seq = %d", img.Seq)
	}
	if len(img.Suffix) != 1 || img.Suffix[0].Pos != 3 {
		t.Fatalf("suffix = %+v, want only the post-checkpoint record", img.Suffix)
	}
}

// TestAtomicReplace: a newer checkpoint replaces the older one
// completely.
func TestAtomicReplace(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	s.SaveCheckpoint(16, []byte("state@16"))
	s.SaveCheckpoint(32, []byte("state@32"))
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	img, err := LoadDir(dir)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if img.Seq != 32 || string(img.State) != "state@32" {
		t.Fatalf("checkpoint = (%d, %q)", img.Seq, img.State)
	}
}

// TestTruncatedTail: a torn final record (crash mid-write) drops only
// that record; the valid prefix survives.
func TestTruncatedTail(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	s.SaveCheckpoint(4, []byte("base"))
	s.Append(1, []byte("aaaa"))
	s.Append(2, []byte("bbbb"))
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	wal := filepath.Join(dir, walFile)
	buf, err := os.ReadFile(wal)
	if err != nil {
		t.Fatalf("read wal: %v", err)
	}
	if err := os.WriteFile(wal, buf[:len(buf)-7], 0o644); err != nil {
		t.Fatalf("truncate wal: %v", err)
	}

	img, err := LoadDir(dir)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if len(img.Suffix) != 1 || img.Suffix[0].Pos != 1 {
		t.Fatalf("suffix = %+v, want only the intact record", img.Suffix)
	}
	if len(img.Damage) == 0 {
		t.Fatal("expected a damage note for the torn tail")
	}
}

// TestCorruptRecordStopsScan: a flipped byte mid-log truncates the
// suffix at the corrupt record (digest mismatch), keeping the prefix.
func TestCorruptRecordStopsScan(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	s.Append(1, []byte("first"))
	s.Append(2, []byte("second"))
	s.Append(3, []byte("third"))
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	wal := filepath.Join(dir, walFile)
	buf, err := os.ReadFile(wal)
	if err != nil {
		t.Fatalf("read wal: %v", err)
	}
	// Flip one payload byte of the second record.
	idx := bytes.Index(buf, []byte("second"))
	if idx < 0 {
		t.Fatal("second record not found")
	}
	buf[idx] ^= 0xFF
	if err := os.WriteFile(wal, buf, 0o644); err != nil {
		t.Fatalf("rewrite wal: %v", err)
	}

	img, err := LoadDir(dir)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if len(img.Suffix) != 1 || img.Suffix[0].Pos != 1 {
		t.Fatalf("suffix = %+v, want only the record before the corruption", img.Suffix)
	}
}

// TestCorruptCheckpointFailsLoad: a damaged snapshot invalidates the
// image entirely — the caller must start cold and Fetch.
func TestCorruptCheckpointFailsLoad(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	s.SaveCheckpoint(16, []byte("state@16"))
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	path := filepath.Join(dir, ckptFile)
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	buf[len(buf)/2] ^= 0xFF
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatalf("rewrite: %v", err)
	}
	if _, err := LoadDir(dir); err == nil {
		t.Fatal("corrupt checkpoint loaded without error")
	}
}

// TestNonMonotonicStopsScan: replayed or reordered positions end the
// suffix (callers require contiguity from their checkpoint on).
func TestNonMonotonicStopsScan(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	s.Append(5, []byte("five"))
	s.Append(6, []byte("six"))
	s.Append(6, []byte("six-again"))
	s.Append(7, []byte("seven"))
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	img, err := LoadDir(dir)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if len(img.Suffix) != 2 || img.Suffix[1].Pos != 6 {
		t.Fatalf("suffix = %+v, want records 5 and 6 only", img.Suffix)
	}
}

// TestWriteBehindDoesNotBlock: appends beyond the queue capacity are
// dropped and counted, never blocked on.
func TestWriteBehindDoesNotBlock(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	defer s.Close()
	payload := bytes.Repeat([]byte("x"), 128)
	for pos := uint64(1); pos <= 3*opQueueSize; pos++ {
		s.Append(pos, payload)
	}
	// No assertion on the drop count (the writer races the producer);
	// the calls returning at all is the property under test, and Sync
	// must still complete.
	if err := s.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
}
