// Package storage implements the write-behind persistent store of the
// durability layer: a replica asynchronously persists its stable
// checkpoints (atomic snapshot file, written to a temp file and
// renamed into place) and the post-checkpoint log suffix (append-only
// segment file), with fsyncs batched on a dedicated writer goroutine
// so nothing on the replica's hot path ever waits for the disk.
//
// A restarted replica calls Load to rehydrate: the image carries the
// newest valid checkpoint, the validated log suffix behind it, and a
// small atomically-replaced metadata blob (consensus view hints).
// Every record is digest-protected, so torn writes, truncated tails
// and bit flips surface as a shorter — never a wrong — image; callers
// fall back to the protocol's checkpoint Fetch for anything the disk
// cannot prove.
package storage

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
)

// Store is the persistence interface replicas write through. All
// mutating calls are asynchronous (write-behind): they enqueue onto
// the writer goroutine and return immediately. Payload and state
// slices are retained until written and must not be modified by the
// caller after the call.
type Store interface {
	// Load validates and returns the on-disk image. Call it before the
	// first mutating call (it reads the files directly). A missing
	// image returns (nil, nil); a corrupt checkpoint returns an error
	// and the caller starts cold.
	Load() (*Image, error)
	// SaveCheckpoint atomically replaces the checkpoint snapshot and
	// truncates the log segment it covers.
	SaveCheckpoint(seq uint64, state []byte)
	// Append adds one log record behind the latest checkpoint.
	Append(pos uint64, payload []byte)
	// SaveMeta atomically replaces the metadata blob.
	SaveMeta(data []byte)
	// Sync blocks until every previously enqueued write reached disk.
	Sync() error
	// Close drains pending writes, syncs, and releases the files.
	Close() error
}

// Entry is one validated log record of the post-checkpoint suffix.
type Entry struct {
	Pos     uint64
	Payload []byte
}

// Image is a validated on-disk replica state.
type Image struct {
	// Seq is the checkpoint sequence number (0 = no checkpoint; the
	// suffix then replays from genesis).
	Seq   uint64
	State []byte
	// Meta is the metadata blob (nil when absent or corrupt).
	Meta []byte
	// Suffix holds the valid log records behind the checkpoint in
	// strictly increasing position order. A corrupt or out-of-order
	// record truncates the suffix at that point.
	Suffix []Entry
	// Damage notes what Load had to discard (diagnostics only).
	Damage []string
}

// ErrCorrupt wraps validation failures of on-disk records.
var ErrCorrupt = errors.New("storage: corrupt record")

const (
	ckptFile = "checkpoint.snap"
	metaFile = "meta.bin"
	walFile  = "wal.log"

	walMarker   = byte(0xC5)
	maxRecord   = 64 << 20 // cap per-record allocs on corrupt length fields
	opQueueSize = 4096
)

var (
	ckptMagic = []byte("SPDRCKP1")
	metaMagic = []byte("SPDRMET1")
)

type opKind int

const (
	opAppend opKind = iota
	opCheckpoint
	opMeta
	opSync
)

type wop struct {
	kind opKind
	seq  uint64
	data []byte
	ack  chan error
}

// DirStore is the directory-backed Store implementation. One DirStore
// owns its directory; never open two stores on the same directory at
// once.
type DirStore struct {
	dir string

	mu     sync.RWMutex // guards closed vs. enqueue
	closed bool
	ch     chan wop
	wg     sync.WaitGroup

	// DroppedAppends counts log records discarded because the
	// write-behind queue was full (the hot path never blocks). A drop
	// shortens the recoverable suffix, never corrupts it: Load stops at
	// the resulting position gap.
	dropped atomic.Int64
	// lastErr remembers the most recent write failure (diagnostics).
	lastErr atomic.Value // error
}

var _ Store = (*DirStore)(nil)

// Open creates (if needed) the directory and starts the writer.
func Open(dir string) (*DirStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	s := &DirStore{dir: dir, ch: make(chan wop, opQueueSize)}
	s.wg.Add(1)
	go s.runWriter()
	return s, nil
}

// Dir returns the store's directory.
func (s *DirStore) Dir() string { return s.dir }

// DroppedAppends reports how many log records the full write-behind
// queue discarded.
func (s *DirStore) DroppedAppends() int64 { return s.dropped.Load() }

// Err returns the most recent write failure, if any.
func (s *DirStore) Err() error {
	if v := s.lastErr.Load(); v != nil {
		return v.(error)
	}
	return nil
}

// SaveCheckpoint implements Store. Blocks only if the queue is full of
// still-unwritten checkpoints (never in practice: checkpoints are
// orders of magnitude rarer than appends).
func (s *DirStore) SaveCheckpoint(seq uint64, state []byte) {
	s.enqueue(wop{kind: opCheckpoint, seq: seq, data: state}, true)
}

// Append implements Store. Never blocks: when the queue is full the
// record is dropped and counted, shortening the recoverable suffix.
func (s *DirStore) Append(pos uint64, payload []byte) {
	if !s.enqueue(wop{kind: opAppend, seq: pos, data: payload}, false) {
		s.dropped.Add(1)
	}
}

// SaveMeta implements Store.
func (s *DirStore) SaveMeta(data []byte) {
	s.enqueue(wop{kind: opMeta, data: data}, true)
}

// Sync implements Store.
func (s *DirStore) Sync() error {
	ack := make(chan error, 1)
	if !s.enqueue(wop{kind: opSync, ack: ack}, true) {
		return errors.New("storage: store closed")
	}
	return <-ack
}

// Close implements Store.
func (s *DirStore) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	close(s.ch)
	s.mu.Unlock()
	s.wg.Wait()
	return s.Err()
}

// enqueue submits one op; block selects blocking vs. best-effort.
func (s *DirStore) enqueue(op wop, block bool) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return false
	}
	if block {
		s.ch <- op
		return true
	}
	select {
	case s.ch <- op:
		return true
	default:
		return false
	}
}

// runWriter is the write-behind goroutine: it drains the queue in
// batches and fsyncs once per batch, so a burst of appends costs one
// disk sync, not one per record.
func (s *DirStore) runWriter() {
	defer s.wg.Done()
	var wal *os.File
	defer func() {
		if wal != nil {
			wal.Close()
		}
	}()
	fail := func(err error) {
		if err != nil {
			s.lastErr.Store(err)
		}
	}
	openWAL := func() *os.File {
		if wal == nil {
			f, err := os.OpenFile(filepath.Join(s.dir, walFile), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				fail(err)
				return nil
			}
			wal = f
		}
		return wal
	}

	for op := range s.ch {
		walDirty := false
		var acks []chan error
		for {
			switch op.kind {
			case opAppend:
				if f := openWAL(); f != nil {
					fail(writeWALRecord(f, op.seq, op.data))
					walDirty = true
				}
			case opCheckpoint:
				// Order matters: the snapshot must be durable before the
				// log records it covers disappear, so sync the snapshot
				// first, then truncate the segment.
				if walDirty && wal != nil {
					fail(wal.Sync())
					walDirty = false
				}
				fail(writeAtomic(s.dir, ckptFile, encodeCheckpoint(op.seq, op.data)))
				if wal != nil {
					fail(wal.Truncate(0))
					fail(wal.Sync())
				} else {
					fail(os.WriteFile(filepath.Join(s.dir, walFile), nil, 0o644))
				}
			case opMeta:
				fail(writeAtomic(s.dir, metaFile, encodeMeta(op.data)))
			case opSync:
				acks = append(acks, op.ack)
			}
			// Batch: drain whatever queued meanwhile without blocking.
			select {
			case next, ok := <-s.ch:
				if !ok {
					s.finishBatch(wal, walDirty, acks)
					return
				}
				op = next
				continue
			default:
			}
			break
		}
		s.finishBatch(wal, walDirty, acks)
	}
}

// finishBatch performs the one deferred fsync of a drained batch and
// releases any Sync waiters.
func (s *DirStore) finishBatch(wal *os.File, walDirty bool, acks []chan error) {
	if walDirty && wal != nil {
		if err := wal.Sync(); err != nil {
			s.lastErr.Store(err)
		}
	}
	err := s.Err()
	for _, ack := range acks {
		ack <- err
	}
}

// --- encoding ---------------------------------------------------------------

func digestOf(seq uint64, data []byte) [sha256.Size]byte {
	var hdr [8]byte
	binary.BigEndian.PutUint64(hdr[:], seq)
	h := sha256.New()
	h.Write(hdr[:])
	h.Write(data)
	var d [sha256.Size]byte
	h.Sum(d[:0])
	return d
}

func encodeCheckpoint(seq uint64, state []byte) []byte {
	buf := make([]byte, 0, len(ckptMagic)+1+8+4+len(state)+sha256.Size)
	buf = append(buf, ckptMagic...)
	buf = append(buf, 1) // version
	buf = binary.BigEndian.AppendUint64(buf, seq)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(state)))
	buf = append(buf, state...)
	d := digestOf(seq, state)
	return append(buf, d[:]...)
}

func decodeCheckpoint(buf []byte) (uint64, []byte, error) {
	min := len(ckptMagic) + 1 + 8 + 4 + sha256.Size
	if len(buf) < min || !bytes.Equal(buf[:len(ckptMagic)], ckptMagic) || buf[len(ckptMagic)] != 1 {
		return 0, nil, fmt.Errorf("%w: checkpoint header", ErrCorrupt)
	}
	off := len(ckptMagic) + 1
	seq := binary.BigEndian.Uint64(buf[off:])
	n := int(binary.BigEndian.Uint32(buf[off+8:]))
	off += 12
	if n < 0 || n > maxRecord || len(buf) != off+n+sha256.Size {
		return 0, nil, fmt.Errorf("%w: checkpoint truncated", ErrCorrupt)
	}
	state := buf[off : off+n]
	want := digestOf(seq, state)
	if !bytes.Equal(buf[off+n:], want[:]) {
		return 0, nil, fmt.Errorf("%w: checkpoint digest mismatch", ErrCorrupt)
	}
	return seq, state, nil
}

func encodeMeta(data []byte) []byte {
	buf := make([]byte, 0, len(metaMagic)+4+len(data)+sha256.Size)
	buf = append(buf, metaMagic...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(data)))
	buf = append(buf, data...)
	d := digestOf(0, data)
	return append(buf, d[:]...)
}

func decodeMeta(buf []byte) ([]byte, error) {
	min := len(metaMagic) + 4 + sha256.Size
	if len(buf) < min || !bytes.Equal(buf[:len(metaMagic)], metaMagic) {
		return nil, fmt.Errorf("%w: meta header", ErrCorrupt)
	}
	n := int(binary.BigEndian.Uint32(buf[len(metaMagic):]))
	off := len(metaMagic) + 4
	if n < 0 || n > maxRecord || len(buf) != off+n+sha256.Size {
		return nil, fmt.Errorf("%w: meta truncated", ErrCorrupt)
	}
	data := buf[off : off+n]
	want := digestOf(0, data)
	if !bytes.Equal(buf[off+n:], want[:]) {
		return nil, fmt.Errorf("%w: meta digest mismatch", ErrCorrupt)
	}
	return data, nil
}

func writeWALRecord(f *os.File, pos uint64, payload []byte) error {
	buf := make([]byte, 0, 1+8+4+len(payload)+sha256.Size)
	buf = append(buf, walMarker)
	buf = binary.BigEndian.AppendUint64(buf, pos)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(payload)))
	buf = append(buf, payload...)
	d := digestOf(pos, payload)
	buf = append(buf, d[:]...)
	_, err := f.Write(buf)
	return err
}

// writeAtomic writes data to a temp file, syncs it, and renames it
// into place, so the target is always either the old or the new
// complete content.
func writeAtomic(dir, name string, data []byte) error {
	tmp, err := os.CreateTemp(dir, name+".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, filepath.Join(dir, name)); err != nil {
		os.Remove(tmpName)
		return err
	}
	// Durability of the rename itself.
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
	return nil
}

// --- load -------------------------------------------------------------------

// Load implements Store. It must run before the first mutating call.
func (s *DirStore) Load() (*Image, error) {
	return LoadDir(s.dir)
}

// LoadDir validates a store directory without opening a writer.
func LoadDir(dir string) (*Image, error) {
	img := &Image{}
	haveAny := false

	ckptBuf, err := os.ReadFile(filepath.Join(dir, ckptFile))
	switch {
	case err == nil:
		seq, state, derr := decodeCheckpoint(ckptBuf)
		if derr != nil {
			// A corrupt checkpoint invalidates the whole image: the
			// suffix has no base to replay onto.
			return nil, derr
		}
		img.Seq = seq
		img.State = state
		haveAny = true
	case os.IsNotExist(err):
	default:
		return nil, err
	}

	if metaBuf, err := os.ReadFile(filepath.Join(dir, metaFile)); err == nil {
		if data, derr := decodeMeta(metaBuf); derr == nil {
			img.Meta = data
			haveAny = true
		} else {
			img.Damage = append(img.Damage, derr.Error())
		}
	}

	suffix, damage, err := loadWAL(filepath.Join(dir, walFile))
	if err != nil && !os.IsNotExist(err) {
		return nil, err
	}
	img.Suffix = suffix
	img.Damage = append(img.Damage, damage...)
	if len(suffix) > 0 {
		haveAny = true
	}

	if !haveAny {
		return nil, nil
	}
	return img, nil
}

// loadWAL scans the segment file and returns the valid prefix of
// strictly-increasing records; anything from the first bad byte on is
// discarded (a crashed writer leaves at most one torn tail record).
func loadWAL(path string) ([]Entry, []string, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	var entries []Entry
	var damage []string
	off := 0
	lastPos := uint64(0)
	for off < len(buf) {
		rest := buf[off:]
		if len(rest) < 1+8+4 || rest[0] != walMarker {
			damage = append(damage, fmt.Sprintf("wal: bad record header at offset %d", off))
			break
		}
		pos := binary.BigEndian.Uint64(rest[1:])
		n := int(binary.BigEndian.Uint32(rest[9:]))
		if n < 0 || n > maxRecord || len(rest) < 13+n+sha256.Size {
			damage = append(damage, fmt.Sprintf("wal: truncated record at offset %d", off))
			break
		}
		payload := rest[13 : 13+n]
		want := digestOf(pos, payload)
		if !bytes.Equal(rest[13+n:13+n+sha256.Size], want[:]) {
			damage = append(damage, fmt.Sprintf("wal: digest mismatch at offset %d", off))
			break
		}
		if len(entries) > 0 && pos <= lastPos {
			damage = append(damage, fmt.Sprintf("wal: non-monotonic position %d after %d", pos, lastPos))
			break
		}
		entries = append(entries, Entry{Pos: pos, Payload: payload})
		lastPos = pos
		off += 13 + n + sha256.Size
	}
	return entries, damage, nil
}
